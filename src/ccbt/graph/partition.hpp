#pragma once
// 1D block vertex partition (Section 7): vertices are distributed among
// R ranks in contiguous blocks; every projection-table entry (u,v,α) is
// owned by the rank owning v. The load model charges operations and
// communication against this ownership map.

#include <cstdint>

#include "ccbt/graph/types.hpp"

namespace ccbt {

class BlockPartition {
 public:
  BlockPartition() = default;

  BlockPartition(VertexId num_vertices, std::uint32_t num_ranks)
      : n_(num_vertices),
        ranks_(num_ranks == 0 ? 1 : num_ranks),
        block_((n_ + ranks_ - 1) / (ranks_ == 0 ? 1 : ranks_)) {
    if (block_ == 0) block_ = 1;
  }

  std::uint32_t num_ranks() const { return ranks_; }
  VertexId num_vertices() const { return n_; }

  std::uint32_t owner(VertexId v) const {
    const auto r = static_cast<std::uint32_t>(v / block_);
    return r < ranks_ ? r : ranks_ - 1;
  }

  /// First vertex owned by rank r.
  VertexId begin(std::uint32_t r) const {
    const auto b = static_cast<std::uint64_t>(r) * block_;
    return b > n_ ? n_ : static_cast<VertexId>(b);
  }

  /// One past the last vertex owned by rank r.
  VertexId end(std::uint32_t r) const {
    return r + 1 == ranks_ ? n_ : begin(r + 1);
  }

 private:
  VertexId n_ = 0;
  std::uint32_t ranks_ = 1;
  VertexId block_ = 1;
};

}  // namespace ccbt
