#pragma once
// Insert-or-accumulate open-addressing hash map over TableKey.
//
// Section 7: "All the tables are maintained as distributed hash tables
// which use open addressing to resolve collisions." This is the
// shared-memory equivalent: a power-of-two slot array of indices into a
// dense entry vector. Only insertion and accumulation are needed during a
// join; afterwards the entries are sealed (sorted) for merge joins.

#include <cstddef>
#include <vector>

#include "ccbt/table/table_key.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {

class AccumMap {
 public:
  explicit AccumMap(std::size_t expected = 16) { rehash_for(expected); }

  /// Add `cnt` to the entry for `key`, creating it if absent.
  void add(const TableKey& key, Count cnt) {
    if (entries_.size() + 1 > grow_at_) rehash_for(entries_.size() * 2 + 16);
    const std::size_t mask = slots_.size() - 1;
    std::size_t pos = hash_key(key) & mask;
    while (true) {
      const std::uint32_t idx = slots_[pos];
      if (idx == kEmpty) {
        slots_[pos] = static_cast<std::uint32_t>(entries_.size());
        entries_.push_back({key, cnt});
        return;
      }
      if (entries_[idx].key == key) {
        entries_[idx].cnt += cnt;
        return;
      }
      pos = (pos + 1) & mask;
    }
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Pre-size the slot array for `expected` total entries so a bulk merge
  /// (e.g. reducing per-thread maps) runs without intermediate rehashes.
  void reserve(std::size_t expected) {
    if (expected > entries_.size()) {
      entries_.reserve(expected);
      rehash_for(expected);
    }
  }

  /// Move the dense entries out; the map is left empty.
  std::vector<TableEntry> take_entries() {
    std::vector<TableEntry> out = std::move(entries_);
    entries_.clear();
    slots_.assign(slots_.size(), kEmpty);
    return out;
  }

  const std::vector<TableEntry>& entries() const { return entries_; }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;

  void rehash_for(std::size_t expected) {
    std::size_t cap = 32;
    while (cap * 3 / 5 < expected) cap <<= 1;  // keep load factor <= 0.6
    if (!slots_.empty() && cap <= slots_.size()) {
      grow_at_ = slots_.size() * 3 / 5;
      return;
    }
    slots_.assign(cap, kEmpty);
    grow_at_ = cap * 3 / 5;
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      std::size_t pos = hash_key(entries_[i].key) & mask;
      while (slots_[pos] != kEmpty) pos = (pos + 1) & mask;
      slots_[pos] = static_cast<std::uint32_t>(i);
    }
  }

  std::vector<std::uint32_t> slots_;
  std::vector<TableEntry> entries_;
  std::size_t grow_at_ = 0;
};

}  // namespace ccbt
