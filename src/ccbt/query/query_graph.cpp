#include "ccbt/query/query_graph.hpp"

#include <bit>

#include "ccbt/util/error.hpp"

namespace ccbt {

QueryGraph::QueryGraph(int num_nodes, std::string name)
    : n_(num_nodes), name_(std::move(name)) {
  if (num_nodes < 1 || num_nodes > kMaxQueryNodes) {
    throw UnsupportedQuery("query must have between 1 and 16 nodes");
  }
}

QueryGraph::QueryGraph(int num_nodes,
                       const std::vector<std::pair<int, int>>& edges,
                       std::string name)
    : QueryGraph(num_nodes, std::move(name)) {
  for (const auto& [a, b] : edges) {
    add_edge(static_cast<QNode>(a), static_cast<QNode>(b));
  }
}

int QueryGraph::num_edges() const {
  int total = 0;
  for (int a = 0; a < n_; ++a) total += std::popcount(adj_[a]);
  return total / 2;
}

void QueryGraph::add_edge(QNode a, QNode b) {
  if (a >= n_ || b >= n_ || a == b) {
    throw UnsupportedQuery("query edge endpoints invalid");
  }
  adj_[a] |= std::uint32_t{1} << b;
  adj_[b] |= std::uint32_t{1} << a;
}

void QueryGraph::remove_edge(QNode a, QNode b) {
  adj_[a] &= ~(std::uint32_t{1} << b);
  adj_[b] &= ~(std::uint32_t{1} << a);
}

int QueryGraph::degree(QNode a) const { return std::popcount(adj_[a]); }

std::vector<std::pair<int, int>> QueryGraph::edge_pairs() const {
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < n_; ++a) {
    for (int b = a + 1; b < n_; ++b) {
      if (has_edge(static_cast<QNode>(a), static_cast<QNode>(b))) {
        edges.emplace_back(a, b);
      }
    }
  }
  return edges;
}

bool QueryGraph::connected() const {
  if (n_ == 0) return false;
  std::uint32_t seen = 1;
  std::uint32_t frontier = 1;
  while (frontier != 0) {
    std::uint32_t next = 0;
    for (int a = 0; a < n_; ++a) {
      if ((frontier >> a) & 1u) next |= adj_[a];
    }
    frontier = next & ~seen;
    seen |= next;
  }
  return std::popcount(seen) >= n_;
}

std::vector<QNode> QueryGraph::connected_order() const {
  std::vector<QNode> order;
  if (n_ == 0) return order;
  std::uint32_t seen = 1;
  order.push_back(0);
  for (std::size_t head = 0; head < order.size(); ++head) {
    const std::uint32_t nbrs = adj_[order[head]] & ~seen;
    for (int b = 0; b < n_; ++b) {
      if ((nbrs >> b) & 1u) {
        order.push_back(static_cast<QNode>(b));
        seen |= std::uint32_t{1} << b;
      }
    }
  }
  return order;
}

}  // namespace ccbt
