#include "ccbt/dist/dist_table.hpp"

namespace ccbt {

template class DistTableT<1>;
template class DistTableT<2>;
template class DistTableT<4>;
template class DistTableT<8>;

}  // namespace ccbt
