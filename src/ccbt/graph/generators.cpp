#include "ccbt/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "ccbt/util/error.hpp"

namespace ccbt {

namespace {

std::uint64_t edge_code(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

CsrGraph erdos_renyi(VertexId n, std::size_t m, std::uint64_t seed) {
  if (n < 2) return CsrGraph::from_edges(EdgeList{{}, n});
  const std::uint64_t max_edges =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  m = static_cast<std::size_t>(
      std::min<std::uint64_t>(m, max_edges));
  Rng rng(seed);
  std::unordered_set<std::uint64_t> seen;
  EdgeList list;
  list.num_vertices = n;
  while (seen.size() < m) {
    const auto u = static_cast<VertexId>(rng.below(n));
    const auto v = static_cast<VertexId>(rng.below(n));
    if (u == v) continue;
    if (seen.insert(edge_code(u, v)).second) list.add(u, v);
  }
  list.num_vertices = n;
  return CsrGraph::from_edges(list);
}

std::vector<double> truncated_power_law_degrees(VertexId n, double alpha) {
  if (alpha <= 1.0 || alpha >= 2.0) {
    throw Error("truncated_power_law_degrees: alpha must be in (1,2)");
  }
  // Level j holds ~n * 2^(-alpha*j) / Z vertices of degree 2^j (capped at
  // sqrt(n)), where Z normalizes the level shares to sum to one. Levels
  // are filled from the highest degree down so the tail is always
  // represented; the remainder becomes degree-1 vertices.
  std::vector<double> degrees;
  degrees.reserve(n);
  const double sqrt_n = std::sqrt(static_cast<double>(n));
  const int levels =
      static_cast<int>(std::floor(0.5 * std::log2(std::max<double>(n, 2))));
  double z = 0.0;
  for (int j = 0; j <= levels; ++j) z += std::pow(2.0, -alpha * j);
  for (int j = levels; j >= 1 && degrees.size() < n; --j) {
    const double deg = std::min(std::pow(2.0, j), sqrt_n);
    const auto count = static_cast<std::size_t>(std::max(
        1.0,
        std::round(static_cast<double>(n) * std::pow(2.0, -alpha * j) / z)));
    for (std::size_t i = 0; i < count && degrees.size() < n; ++i) {
      degrees.push_back(deg);
    }
  }
  while (degrees.size() < n) degrees.push_back(1.0);
  return degrees;
}

CsrGraph chung_lu(const std::vector<double>& degrees, std::uint64_t seed) {
  // Miller-Hagberg style sampling: process vertices in non-increasing
  // expected degree; for each u, walk candidate partners v with geometric
  // skips under an upper-bound probability, accepting with the exact ratio.
  const auto n = static_cast<VertexId>(degrees.size());
  std::vector<VertexId> order(n);
  for (VertexId i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return degrees[a] != degrees[b] ? degrees[a] > degrees[b] : a < b;
  });
  double two_m = 0.0;
  for (double d : degrees) two_m += d;
  if (two_m <= 0.0) return CsrGraph::from_edges(EdgeList{{}, n});

  Rng rng(seed);
  EdgeList list;
  list.num_vertices = n;
  for (VertexId i = 0; i < n; ++i) {
    const double du = degrees[order[i]];
    if (du <= 0.0) break;
    VertexId j = i + 1;
    // p_bound >= true probability for all later partners in sorted order.
    double p_bound = std::min(1.0, du * degrees[order[i + 1 < n ? i + 1 : i]] /
                                       two_m);
    while (j < n && p_bound > 0.0) {
      if (p_bound < 1.0) {
        // Geometric skip: next candidate at distance ~ Geom(p_bound).
        const double r = rng.uniform();
        j += static_cast<VertexId>(
            std::floor(std::log1p(-r) / std::log1p(-p_bound)));
      }
      if (j >= n) break;
      const double p_real = std::min(1.0, du * degrees[order[j]] / two_m);
      if (rng.uniform() < p_real / p_bound) {
        list.add(order[i], order[j]);
      }
      p_bound = p_real;
      ++j;
    }
  }
  return CsrGraph::from_edges(list);
}

CsrGraph chung_lu_power_law(VertexId n, double alpha, double avg_degree,
                            std::uint64_t seed) {
  std::vector<double> degrees = truncated_power_law_degrees(n, alpha);
  double sum = 0.0;
  for (double d : degrees) sum += d;
  const double scale = avg_degree * static_cast<double>(n) / sum;
  const double cap = std::sqrt(static_cast<double>(n));
  for (double& d : degrees) d = std::min(d * scale, cap);
  return chung_lu(degrees, seed);
}

CsrGraph rmat(const RmatParams& params, std::uint64_t seed) {
  const VertexId n = VertexId{1} << params.scale;
  const std::size_t target =
      static_cast<std::size_t>(params.edge_factor) << params.scale;
  Rng rng(seed);
  EdgeList list;
  list.num_vertices = n;
  list.edges.reserve(target);
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  for (std::size_t e = 0; e < target; ++e) {
    VertexId u = 0, v = 0;
    for (int bit = params.scale - 1; bit >= 0; --bit) {
      const double r = rng.uniform();
      if (r < params.a) {
        // top-left quadrant: no bits set
      } else if (r < ab) {
        v |= VertexId{1} << bit;
      } else if (r < abc) {
        u |= VertexId{1} << bit;
      } else {
        u |= VertexId{1} << bit;
        v |= VertexId{1} << bit;
      }
    }
    if (u != v) list.add(u, v);
  }
  return CsrGraph::from_edges(list);
}

CsrGraph grid2d(VertexId rows, VertexId cols, std::size_t extra_edges,
                std::uint64_t seed) {
  EdgeList list;
  const VertexId n = rows * cols;
  list.num_vertices = n;
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) list.add(id(r, c), id(r, c + 1));
      if (r + 1 < rows) list.add(id(r, c), id(r + 1, c));
    }
  }
  Rng rng(seed);
  for (std::size_t e = 0; e < extra_edges; ++e) {
    const auto u = static_cast<VertexId>(rng.below(n));
    const auto v = static_cast<VertexId>(rng.below(n));
    if (u != v) list.add(u, v);
  }
  return CsrGraph::from_edges(list);
}

CsrGraph barabasi_albert(VertexId n, int edges_per_vertex,
                         std::uint64_t seed) {
  if (edges_per_vertex < 1) {
    throw Error("barabasi_albert: edges_per_vertex must be >= 1");
  }
  const auto m0 = static_cast<VertexId>(edges_per_vertex + 1);
  if (n < m0) throw Error("barabasi_albert: n too small for seed clique");
  Rng rng(seed);
  EdgeList list;
  list.num_vertices = n;
  // Endpoint pool: sampling a uniform element is degree-proportional.
  std::vector<VertexId> pool;
  for (VertexId u = 0; u < m0; ++u) {
    for (VertexId v = u + 1; v < m0; ++v) {
      list.add(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  for (VertexId v = m0; v < n; ++v) {
    for (int e = 0; e < edges_per_vertex; ++e) {
      const VertexId target = pool[rng.below(pool.size())];
      list.add(v, target);  // duplicates removed by simplify()
      pool.push_back(v);
      pool.push_back(target);
    }
  }
  return CsrGraph::from_edges(list);
}

CsrGraph watts_strogatz(VertexId n, int ring_neighbors, double beta,
                        std::uint64_t seed) {
  if (ring_neighbors < 1) {
    throw Error("watts_strogatz: ring_neighbors must be >= 1");
  }
  if (beta < 0.0 || beta > 1.0) {
    throw Error("watts_strogatz: beta must be in [0,1]");
  }
  if (n < static_cast<VertexId>(2 * ring_neighbors + 1)) {
    throw Error("watts_strogatz: n too small for the ring");
  }
  Rng rng(seed);
  EdgeList list;
  list.num_vertices = n;
  for (VertexId u = 0; u < n; ++u) {
    for (int j = 1; j <= ring_neighbors; ++j) {
      const VertexId v = (u + static_cast<VertexId>(j)) % n;
      if (rng.uniform() < beta) {
        // Rewire: keep u, pick a fresh endpoint (duplicates and self
        // loops are dropped by simplify()).
        const auto w = static_cast<VertexId>(rng.below(n));
        list.add(u, w);
      } else {
        list.add(u, v);
      }
    }
  }
  return CsrGraph::from_edges(list);
}

CsrGraph stochastic_block(const std::vector<VertexId>& block_sizes,
                          double p_in, double p_out, std::uint64_t seed) {
  if (p_in < 0.0 || p_in > 1.0 || p_out < 0.0 || p_out > 1.0) {
    throw Error("stochastic_block: probabilities must be in [0,1]");
  }
  VertexId n = 0;
  std::vector<VertexId> block_of;
  for (std::size_t b = 0; b < block_sizes.size(); ++b) {
    for (VertexId i = 0; i < block_sizes[b]; ++i) {
      block_of.push_back(static_cast<VertexId>(b));
    }
    n += block_sizes[b];
  }
  Rng rng(seed);
  EdgeList list;
  list.num_vertices = n;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      const double p = block_of[u] == block_of[v] ? p_in : p_out;
      if (rng.uniform() < p) list.add(u, v);
    }
  }
  return CsrGraph::from_edges(list);
}

CsrGraph complete_graph(VertexId n) {
  EdgeList list;
  list.num_vertices = n;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) list.add(u, v);
  }
  return CsrGraph::from_edges(list);
}

CsrGraph cycle_graph(VertexId n) {
  EdgeList list;
  list.num_vertices = n;
  for (VertexId u = 0; u < n; ++u) list.add(u, (u + 1) % n);
  return CsrGraph::from_edges(list);
}

CsrGraph path_graph(VertexId n) {
  EdgeList list;
  list.num_vertices = n;
  for (VertexId u = 0; u + 1 < n; ++u) list.add(u, u + 1);
  return CsrGraph::from_edges(list);
}

CsrGraph star_graph(VertexId leaves) {
  EdgeList list;
  list.num_vertices = leaves + 1;
  for (VertexId v = 1; v <= leaves; ++v) list.add(0, v);
  return CsrGraph::from_edges(list);
}

CsrGraph complete_bipartite(VertexId a, VertexId b) {
  EdgeList list;
  list.num_vertices = a + b;
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) list.add(u, a + v);
  }
  return CsrGraph::from_edges(list);
}

}  // namespace ccbt
