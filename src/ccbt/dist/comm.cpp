#include "ccbt/dist/comm.hpp"

#include <algorithm>

#include "ccbt/util/error.hpp"

namespace ccbt {

VirtualComm::VirtualComm(std::uint32_t ranks) {
  if (ranks == 0) throw Error("VirtualComm: need at least one rank");
  outbox_.resize(ranks);
  inbox_.resize(ranks);
}

void VirtualComm::exchange() {
  for (auto& in : inbox_) in.clear();
  // Senders drain in rank order, each in send order: deterministic
  // delivery independent of any real interleaving.
  for (auto& out : outbox_) {
    for (const Queued& q : out) inbox_[q.to].push_back(q.entry);
    out.clear();
  }
  for (const auto& in : inbox_) {
    stats_.max_step_recv =
        std::max(stats_.max_step_recv, static_cast<std::uint64_t>(in.size()));
  }
  ++stats_.supersteps;
}

Count VirtualComm::allreduce_sum(const std::vector<Count>& parts) const {
  Count sum = 0;
  for (Count c : parts) sum += c;
  return sum;
}

}  // namespace ccbt
