#pragma once
// Closed-form bound calculators for the Section 9 analysis.
//
// For a Chung-Lu graph with expected degree sequence d and a cycle query
// of length k, the paper bounds the dominant enumeration terms of the two
// procedures by degree-sequence moments:
//   * E[Y(q)] >= (1/q) (2m)^{3-q} (Σ d_u^2)^{q-2}          (Lemma 9.5)
//     — the id-anchored paths the symmetry-broken PS variant explores;
//   * E[X(q)] <= C (2m)^{2-q} (Σ d_u^{2-1/(q-1)})^{q-1}    (Lemma 9.6)
//     — the high-starting paths DB explores (we report the bound with
//     C = 1; all comparisons are up to constants);
// with q = ceil(k/2) dominating (Remark 9.2). Lemma 9.7 (via Hölder,
// Claim 9.2) shows the X bound never exceeds q times the Y bound, and
// Lemma 9.8 makes the gap polynomial under a truncated power law.
// Claim 10.1's balancedness λ = Σ d^{a+b} / (Σ d^a · Σ d^b) quantifies
// how concentrated the sequence is on its hubs.

#include <vector>

namespace ccbt {

/// Σ_u d_u^p over the expected degree sequence.
double seq_moment(const std::vector<double>& degrees, double p);

/// Half the first moment: m = (1/2) Σ d_u.
double seq_edges(const std::vector<double>& degrees);

/// Lemma 9.5 lower bound on E[Y(q)] (id-anchored q-vertex paths).
double y_lower_bound(const std::vector<double>& degrees, int q);

/// Lemma 9.6 upper bound on E[X(q)] (high-starting q-vertex paths), C=1.
double x_upper_bound(const std::vector<double>& degrees, int q);

/// Claim 10.1 balancedness λ(a, b) = Σ d^{a+b} / (Σ d^a · Σ d^b).
double balancedness_lambda(const std::vector<double>& degrees, int a, int b);

/// The dominant term index q = ceil(k/2) for a k-cycle (Remark 9.2).
int dominant_path_length(int cycle_length);

/// Lemma 9.8's predicted E[Y]/E[X] improvement exponent for a truncated
/// power law with parameter alpha: the ratio grows as n^{(alpha-1)/2} for
/// alpha < 2 - 1/(q-1) (up to polylog factors beyond that threshold).
double predicted_improvement_exponent(double alpha, int q);

}  // namespace ccbt
