#pragma once
// Approximate subgraph counting via repeated colorful counts (Section 2):
// (k^k / k!) * E[colorful] equals the exact number of matches, so the mean
// over independent colorings converges to it. The coefficient of variation
// over trials is the precision metric of Section 8.6 / Figure 15.

#include <cstdint>
#include <vector>

#include "ccbt/core/color_coding.hpp"
#include "ccbt/util/fault.hpp"

namespace ccbt {

struct EstimatorOptions {
  int trials = 10;
  std::uint64_t seed = 1;

  /// Colorings per plan execution (the engine's batch width B, capped at
  /// kMaxBatchLanes): trials are submitted in batches of the largest
  /// supported width (8, 4, 2, 1) that fits under both this cap and the
  /// remaining trial count. Per-trial colorful counts are identical to a
  /// batch of 1 — batching only amortizes the execution cost.
  int batch = 1;

  /// Deterministic estimator-level fault schedule: trial_fail_rate drops
  /// individual trials (a rank lost mid-trial, past engine recovery).
  /// Default spec injects nothing.
  FaultSpec faults;

  /// Degrade gracefully on lost trials: renormalize the mean over the
  /// survivors (unbiased — drops are decided by an independent fault
  /// stream, never by trial values), widen the reported confidence, and
  /// flag the result degraded. When false, any lost trial throws.
  bool allow_degraded = true;

  ExecOptions exec;
};

struct EstimatorResult {
  /// Estimated number of matches (injective mappings), mean over trials.
  double matches = 0.0;

  /// Estimated number of occurrences (= matches / aut(Q)).
  double occurrences = 0.0;

  std::uint64_t automorphisms = 1;
  double variance = 0.0;       // sample variance of per-trial estimates
  double cv = 0.0;             // stddev / mean (0 when the mean is 0)
  double variance_over_mean = 0.0;  // the paper's Fig 15 ratio
  std::vector<Count> colorful_per_trial;
  std::vector<double> estimate_per_trial;
  double total_wall_seconds = 0.0;

  /// Per-stage wall breakdown summed over every plan execution of the
  /// run (see ExecStats::stage) — what BENCH_batch.json attributes the
  /// batch-width speedup to.
  StageWall stage;

  // Degraded-mode accounting. matches/cv are computed over the surviving
  // trials only; cv_widened additionally inflates the uncertainty by
  // sqrt(planned / survivors) to reflect the thinner sample.
  int trials_planned = 0;
  int trials_dropped = 0;
  bool degraded = false;      // at least one trial was lost to a fault
  double cv_widened = 0.0;    // == cv when nothing was dropped
};

EstimatorResult estimate_matches(const CsrGraph& g, const QueryGraph& q,
                                 const EstimatorOptions& opts = {});

/// Estimator over a pre-built session (lets callers reuse plans).
EstimatorResult estimate_matches(const CountingSession& session,
                                 const EstimatorOptions& opts);

/// Adaptive stopping for the Section 8.6 workflow ("82% of combinations
/// reach cv <= 0.1 within three trials; 91% within ten"): keep adding
/// trials until the coefficient of variation of the per-trial estimates
/// falls to `target_cv`, bounded by [min_trials, max_trials].
struct AdaptiveOptions {
  double target_cv = 0.1;
  int min_trials = 3;
  int max_trials = 50;
  std::uint64_t seed = 1;

  /// Colorings per plan execution (see EstimatorOptions::batch). With
  /// batch > 1 the cv is tested at batch boundaries, so a run can
  /// overshoot the minimal trial count by at most batch - 1 trials.
  int batch = 1;

  /// Estimator-level fault schedule (see EstimatorOptions::faults). Lost
  /// trials do not count toward min_trials or convergence: the adaptive
  /// loop keeps going until enough trials *survive*.
  FaultSpec faults;

  /// See EstimatorOptions::allow_degraded.
  bool allow_degraded = true;

  ExecOptions exec;
};

struct AdaptiveResult {
  EstimatorResult estimate;
  int trials_used = 0;
  bool converged = false;  // hit target_cv before max_trials
};

AdaptiveResult estimate_matches_adaptive(const CountingSession& session,
                                         const AdaptiveOptions& opts = {});

AdaptiveResult estimate_matches_adaptive(const CsrGraph& g,
                                         const QueryGraph& q,
                                         const AdaptiveOptions& opts = {});

}  // namespace ccbt
