#pragma once
// DistTable: a projection table physically sharded across virtual ranks.
//
// Section 7: every entry (u, v, α) is owned by the rank owning the vertex
// in its *home slot* (slot 1 = the frontier while a path table is being
// extended; slot 0 once a block table is stored for child lookups). A
// DistTable is the union of per-rank ProjTable shards; a table is "well
// placed" when every entry sits on the owner of its home-slot vertex.
//
// Movement between placements (resharding, transposition) happens through
// VirtualComm supersteps, so the transport statistics account for it.

#include <cstdint>
#include <vector>

#include "ccbt/dist/comm.hpp"
#include "ccbt/graph/partition.hpp"
#include "ccbt/table/proj_table.hpp"

namespace ccbt {

class DistTable {
 public:
  DistTable() = default;

  /// Drain every rank's inbox (as delivered by the last exchange) into
  /// its shard, accumulating duplicate keys, and seal each shard in
  /// `order` (`domain` enables the shards' O(1) bucket index). Throws
  /// BudgetExceeded when the total entry count exceeds `budget`.
  static DistTable collect(int arity, int home_slot, VirtualComm& comm,
                           SortOrder order, std::size_t budget,
                           VertexId domain = 0);

  /// Materialize from per-rank accumulation maps (the cycle solver's
  /// merge sinks), one shard per map; shards stay unsealed.
  static DistTable from_maps(int arity, int home_slot,
                             std::vector<AccumMap> maps);

  int arity() const { return arity_; }
  int home_slot() const { return home_slot_; }

  std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// Total entries across all shards.
  std::size_t size() const;

  /// Total count across all shards (the root's colorful count).
  Count total() const;

  const ProjTable& shard(std::uint32_t rank) const { return shards_[rank]; }

  /// Per-shard totals, one slot per rank (allreduce input).
  std::vector<Count> shard_totals() const;

  /// Every entry lives on the owner of its home-slot vertex.
  bool well_placed(const BlockPartition& part) const;

  /// Flatten into one shared-memory table, accumulating duplicate keys.
  ProjTable gather() const;

  /// Move every entry to the owner of its `new_home` slot vertex (one
  /// superstep), sealing shards in `order`.
  DistTable resharded(int new_home, VirtualComm& comm,
                      const BlockPartition& part, SortOrder order,
                      std::size_t budget, VertexId domain = 0) const;

  /// Swap key slots 0 and 1 and re-home (one superstep); shards sealed
  /// kByV0 — the storage convention for child-block tables.
  DistTable transposed(VirtualComm& comm, const BlockPartition& part,
                       std::size_t budget, VertexId domain = 0) const;

  /// Seal every shard (used before per-shard merge joins).
  void seal_shards(SortOrder order, VertexId domain = 0);

 private:
  int arity_ = 0;
  int home_slot_ = 0;
  std::vector<ProjTable> shards_;
};

}  // namespace ccbt
