// Unit tests for plan features and the Section 6 selection heuristic.

#include <gtest/gtest.h>

#include "ccbt/decomp/plan.hpp"
#include "ccbt/query/catalog.hpp"

namespace ccbt {
namespace {

TEST(PlanFeatures, ComparatorOrdersLexicographically) {
  PlanFeatures a{4, 3, 2}, b{5, 0, 0}, c{4, 4, 0}, d{4, 3, 3};
  EXPECT_LT(a, b);  // shorter longest cycle wins first
  EXPECT_LT(a, c);  // then fewer boundary nodes
  EXPECT_LT(a, d);  // then fewer annotations
}

TEST(PlanFeatures, TriangleFeatures) {
  const Plan plan = make_plan(q_cycle(3));
  EXPECT_EQ(plan.features.longest_cycle, 3);
  EXPECT_EQ(plan.features.total_boundary, 0);
  EXPECT_EQ(plan.features.total_annotations, 0);
}

TEST(PlanFeatures, TreeQueryHasNoCycles) {
  const Plan plan = make_plan(q_complete_binary_tree(7));
  EXPECT_EQ(plan.features.longest_cycle, 0);
}

TEST(MakePlan, Brain1PrefersContractingLongCycleLast) {
  // brain1 = C4 and C6 sharing an edge. Both trees have longest cycle 6;
  // the heuristic must still return one of them and its features must
  // match the best enumerated features.
  const auto plans = enumerate_plans(q_brain1());
  ASSERT_GE(plans.size(), 2u);
  const Plan chosen = make_plan(q_brain1());
  for (const Plan& p : plans) {
    EXPECT_FALSE(p.features < chosen.features)
        << "heuristic missed a better plan";
  }
}

TEST(MakePlan, HeuristicIsOptimalByFeaturesForCatalog) {
  for (const char* name : {"dros", "ecoli1", "ecoli2", "brain1", "brain2",
                           "brain3", "glet1", "glet2", "wiki", "youtube",
                           "satellite"}) {
    const QueryGraph q = named_query(name);
    const Plan chosen = make_plan(q);
    for (const Plan& p : enumerate_plans(q)) {
      EXPECT_FALSE(p.features < chosen.features) << name;
    }
  }
}

TEST(MakePlan, PlanMatchesQuerySize) {
  const Plan plan = make_plan(q_satellite());
  EXPECT_EQ(plan.tree.k, 11);
}

TEST(EnumeratePlans, FeatureVariationExists) {
  // satellite admits trees with different annotation counts; the
  // enumeration must expose genuinely different feature vectors.
  const auto plans = enumerate_plans(q_satellite());
  ASSERT_GE(plans.size(), 2u);
  bool any_difference = false;
  for (std::size_t i = 1; i < plans.size(); ++i) {
    any_difference |= !(plans[i].features == plans[0].features);
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace ccbt
