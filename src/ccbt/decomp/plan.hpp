#pragma once
// Query plans and the plan-selection heuristic of Section 6.
//
// The paper's study found execution time is driven by, in decreasing
// order of importance: (i) the length of the longest cycle block,
// (ii) the number of boundary nodes, (iii) the number of node/edge
// annotations. The heuristic enumerates the (small) space of decomposition
// trees for a query and picks the lexicographic minimum of these features.

#include <cstddef>
#include <vector>

#include "ccbt/decomp/block.hpp"
#include "ccbt/decomp/tree_enum.hpp"
#include "ccbt/query/query_graph.hpp"

namespace ccbt {

struct PlanFeatures {
  int longest_cycle = 0;
  int total_boundary = 0;
  int total_annotations = 0;

  friend bool operator<(const PlanFeatures& a, const PlanFeatures& b) {
    if (a.longest_cycle != b.longest_cycle) {
      return a.longest_cycle < b.longest_cycle;
    }
    if (a.total_boundary != b.total_boundary) {
      return a.total_boundary < b.total_boundary;
    }
    return a.total_annotations < b.total_annotations;
  }
  friend bool operator==(const PlanFeatures&, const PlanFeatures&) = default;
};

struct Plan {
  DecompTree tree;
  PlanFeatures features;
};

PlanFeatures features_of(const DecompTree& tree);

/// All distinct plans (decomposition trees + features), enumeration caps
/// as in tree_enum.
std::vector<Plan> enumerate_plans(const QueryGraph& q,
                                  const EnumLimits& limits = {});

/// The heuristic-selected plan (Section 6).
Plan make_plan(const QueryGraph& q, const EnumLimits& limits = {});

}  // namespace ccbt
