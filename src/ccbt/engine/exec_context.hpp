#pragma once
// Execution context shared by all engine primitives.

#include <cstddef>
#include <cstdint>

#include "ccbt/engine/load_model.hpp"
#include "ccbt/graph/coloring.hpp"
#include "ccbt/graph/csr_graph.hpp"
#include "ccbt/graph/degree_order.hpp"
#include "ccbt/graph/partition.hpp"
#include "ccbt/table/flat_rows.hpp"
#include "ccbt/table/lane_payload.hpp"
#include "ccbt/util/fault.hpp"
#include "ccbt/util/timer.hpp"

namespace ccbt {

/// Wall-clock breakdown of one plan execution by pipeline stage, so a
/// batch-width speedup (or regression) is attributable stage by stage
/// (BENCH_batch.json): kernel emission, sorting seals, merge joins, and
/// — distributed engine only — the transport exchanges.
struct StageWall {
  double accumulate = 0.0;  // join kernels emitting rows (incl. hash adds)
  double seal = 0.0;        // sort + dedup + layout choice / (re)packing
  double merge = 0.0;       // merge_halves / merge_bucket sweeps
  double transport = 0.0;   // virtual-MPI encode/exchange/decode

  void add(const StageWall& o) {
    accumulate += o.accumulate;
    seal += o.seal;
    merge += o.merge;
    transport += o.transport;
  }

  double total() const { return accumulate + seal + merge + transport; }
};

/// RAII accumulator for one StageWall slot; tolerates a null slot so the
/// hot paths need no "is timing attached" branches at the call sites.
class ScopedStage {
 public:
  explicit ScopedStage(double* slot) noexcept : slot_(slot) {}
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;
  ~ScopedStage() {
    if (slot_ != nullptr) *slot_ += timer_.seconds();
  }

 private:
  double* slot_;
  Timer timer_;
};

/// Which cycle-solving strategy to run (Section 5).
enum class Algo : std::uint8_t {
  kPS,      // baseline: split at the boundary nodes (Alon et al. DP)
  kPSEven,  // ablation: split evenly at (p, diag(p)), track boundaries
  kDB,      // degree-based: anchor at the highest node, split at diagonal
};

inline const char* algo_name(Algo a) {
  switch (a) {
    case Algo::kPS: return "PS";
    case Algo::kPSEven: return "PS-EVEN";
    case Algo::kDB: return "DB";
  }
  return "?";
}

/// Fault-tolerance knobs for the distributed engine: deterministic fault
/// injection plus the three-layer recovery ladder (superstep retransmit
/// with backoff -> checkpoint replay -> typed retryable error the
/// estimator degrades on).
struct DistOptions {
  /// Deterministic fault schedule; a default spec injects nothing and
  /// keeps the transport on its zero-overhead fault-free path.
  FaultSpec faults;

  /// Extra delivery attempts per superstep before the transport gives up
  /// (CommTimeout / RankFailed).
  std::uint32_t max_retries = 3;

  /// Rollback-to-checkpoint replays per run before a retryable failure
  /// propagates to the caller.
  std::uint32_t max_replays = 2;

  /// Snapshot the sealed-shard state once at least this many transport
  /// supersteps passed since the last snapshot (checked at block
  /// boundaries). 0 disables periodic checkpoints; replay then restarts
  /// from the implicit initial (empty) checkpoint.
  std::uint64_t checkpoint_interval = 0;

  /// Per-superstep exchange-acknowledgment deadline: a stalled rank is
  /// detected after (virtually) waiting this long. Accounted in
  /// FaultStats::deadline_wait_virtual_ms, never slept.
  double deadline_ms = 100.0;

  /// Base of the exponential retry backoff (virtual, jittered).
  double backoff_base_ms = 1.0;
};

struct ExecOptions {
  Algo algo = Algo::kDB;

  /// Virtual MPI ranks for the load model; 0 disables load accounting.
  std::uint32_t sim_ranks = 0;

  /// Abort with BudgetExceeded when any table grows beyond this (the
  /// paper's PS runs hit exactly this wall — blank cells in Fig 10).
  std::size_t max_table_entries = 80'000'000;

  /// Ablation: anchor DB at the id order instead of the degree order
  /// (isolates the value of degree information from symmetry breaking).
  bool order_by_id = false;

  /// Use OpenMP in the join primitives.
  bool use_threads = true;

  /// Accumulate joins through the compact AccumMap layouts when keys and
  /// counts permit: packed 16-byte rows at B = 1, narrow u32 lane rows at
  /// B > 1 (see table/accum_map.hpp).
  bool compact_accum = true;

  /// Let tables use the compressed row layouts (B > 1): the narrow flat
  /// accumulation rows the hot path sorts and streams (table/
  /// flat_rows.hpp) and the masked columnar layout stored tables re-pack
  /// into when the observed lane density makes it smaller (table/
  /// lane_payload.hpp). Off forces the dense u64[B] layout everywhere.
  bool lane_compress = true;

  /// Join the half-cycle merge directly on the narrow flat rows when both
  /// sealed halves stayed narrow (B > 1): live-lane-intersection
  /// multiply-add on the packed payloads, no dense per-bucket expansion.
  /// Off forces the dense merge_bucket everywhere (parity ablation).
  bool packed_merge = true;

  /// Fault injection and recovery (distributed engine only; the shared
  /// engine ignores it).
  DistOptions dist;
};

struct ExecContext {
  const CsrGraph& g;
  ColoringBatch chi;  // 1..kMaxBatchLanes colorings; lane 0 = scalar view
  const DegreeOrder& order;
  BlockPartition part;       // ownership map for the load model
  LoadModel* load = nullptr;  // optional
  ExecOptions opts;

  /// Optional collector of seal-time lane-layout observations (density,
  /// chosen payload widths); the engines attach one and surface it
  /// through ExecStats / DistStats.
  LaneTelemetry* lane_telemetry = nullptr;

  /// Optional per-stage wall-clock collector (accumulate / seal / merge /
  /// transport); the engines attach one and surface it through
  /// ExecStats::stage / DistStats::stage.
  StageWall* stage = nullptr;

  /// Optional collector of B > 1 accumulation telemetry (engine used,
  /// combining-cache folds, shard occupancy); accumulate_flat folds each
  /// phase's reduced sink into it and the engines surface it through
  /// ExecStats::accum / DistStats::accum.
  AccumTelemetry* accum = nullptr;

  double* stage_slot(double StageWall::* member) const {
    return stage == nullptr ? nullptr : &(stage->*member);
  }

  std::uint32_t owner(VertexId v) const { return part.owner(v); }

  /// Seal hint for tables this run stores for repeated probes.
  LaneSealHint store_hint() const {
    return opts.lane_compress ? LaneSealHint::kStore : LaneSealHint::kStream;
  }

  void note_lanes(const LaneLayoutInfo& info) const {
    if (lane_telemetry != nullptr) lane_telemetry->note(info);
  }

  void charge(VertexId at, std::uint64_t ops) const {
    if (load != nullptr) load->add_ops(part.owner(at), ops);
  }
  void send(VertexId from, VertexId to, std::uint64_t n) const {
    if (load != nullptr) {
      load->add_comm(part.owner(from), part.owner(to), n);
    }
  }
  void end_phase() const {
    if (load != nullptr) load->end_phase();
  }
};

}  // namespace ccbt
