#pragma once
// Virtual-rank BSP load model — the substitution for the paper's MPI runs.
//
// The paper measures "load" as the number of projection function
// operations executed per rank (Fig 11) and reports strong/weak scaling of
// wall time on Blue Gene/Q (Figs 12-13). We reproduce the phenomenology:
// every join primitive charges its operations to the rank owning the
// vertex it executes on (entry (u,v,α) is owned by owner(v), Section 7)
// and each primitive is one bulk-synchronous phase. The simulated time of
// a run is the sum over phases of the slowest rank's work:
//
//   sim_time = Σ_phase max_r ( ops_r + comm_cost * recv_r )
//
// Improvement factors, speedups and normalized loads — the quantities in
// every figure — are ratios of these unitless totals.
//
// Charging is thread-affine: add_ops/add_comm write to the calling
// OpenMP thread's private charge buffer, so the engine's parallel join
// loops can account load without serializing. end_phase() — always called
// from serial code between primitives — reduces the buffers into the
// per-rank phase totals. Charges are additive and the reduction is
// order-independent, so a threaded simulated run produces bit-identical
// totals to a serial one.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "ccbt/graph/partition.hpp"

namespace ccbt {

class LoadModel {
 public:
  explicit LoadModel(std::uint32_t ranks, double comm_cost = 2.0);

  std::uint32_t num_ranks() const {
    return static_cast<std::uint32_t>(total_ops_.size());
  }

  /// Charge `n` projection operations to `rank` (thread-safe).
  void add_ops(std::uint32_t rank, std::uint64_t n);

  /// Model `n` entries sent from -> to; off-rank traffic charges the
  /// receiver (thread-safe).
  void add_comm(std::uint32_t from, std::uint32_t to, std::uint64_t n);

  /// Close the current bulk-synchronous phase and charge its makespan.
  /// Must be called outside parallel regions.
  void end_phase();

  /// Unitless simulated makespan across all closed phases.
  double sim_time() const { return sim_time_; }

  /// Per-rank totals over the whole run (Fig 11's load metrics). Totals
  /// reflect closed phases only.
  std::uint64_t total_ops() const;
  std::uint64_t max_rank_ops() const;
  double avg_rank_ops() const;
  std::uint64_t total_comm() const { return total_comm_; }

  const std::vector<std::uint64_t>& rank_ops() const { return total_ops_; }

 private:
  /// One OpenMP thread's uncommitted charges for the open phase. The
  /// counters are relaxed atomics: in the expected configuration each
  /// buffer has exactly one writer, but if a caller enlarges the OpenMP
  /// team after construction, the surplus threads fold onto existing
  /// buffers and the charges stay correct (additive, order-free) instead
  /// of racing.
  struct alignas(64) ThreadCharges {
    std::unique_ptr<std::atomic<std::uint64_t>[]> ops;   // per rank
    std::unique_ptr<std::atomic<std::uint64_t>[]> recv;  // per rank
    std::atomic<std::uint64_t> comm{0};  // off-rank entry count
  };

  ThreadCharges& mine();

  double comm_cost_ = 2.0;
  double sim_time_ = 0.0;
  std::uint64_t total_comm_ = 0;
  std::vector<ThreadCharges> bufs_;   // one per OpenMP thread
  std::vector<std::uint64_t> total_ops_;
};

}  // namespace ccbt
