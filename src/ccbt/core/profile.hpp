#pragma once
// Motif profiles: estimate a whole family of same-size queries at once.
//
// The classification applications behind the paper's wiki and youtube
// queries ([32], [24]) fingerprint a network by the counts of *every*
// motif in a family. Color coding makes the family case cheap: one
// k-coloring is valid for every k-node query, so each trial draws a
// single coloring shared across the family, and per-query plans are
// built once and reused across trials. Tree queries are dispatched to
// the linear-time treelet DP, cyclic ones to the DB engine.

#include <vector>

#include "ccbt/core/estimator.hpp"
#include "ccbt/graph/csr_graph.hpp"
#include "ccbt/query/query_graph.hpp"

namespace ccbt {

struct ProfileOptions {
  int trials = 3;
  std::uint64_t seed = 1;
  ExecOptions exec;
};

struct ProfileEntry {
  QueryGraph query;
  double matches = 0.0;      // estimated injective mappings
  double occurrences = 0.0;  // matches / aut
  double cv = 0.0;           // precision across trials
  std::uint64_t automorphisms = 1;
};

/// Profile an explicit family; every query must have the same node count.
std::vector<ProfileEntry> motif_profile(const CsrGraph& g,
                                        const std::vector<QueryGraph>& family,
                                        const ProfileOptions& opts = {});

/// The canonical families: all connected treewidth<=2 queries (or all
/// trees with max_treewidth=1) on k nodes, 3 <= k <= 6.
std::vector<ProfileEntry> graphlet_profile(const CsrGraph& g, int k,
                                           const ProfileOptions& opts = {},
                                           int max_treewidth = 2);

}  // namespace ccbt
