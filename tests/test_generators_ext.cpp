// Watts-Strogatz and stochastic-block generators: structural invariants.

#include <gtest/gtest.h>

#include "ccbt/graph/generators.hpp"
#include "ccbt/graph/graph_stats.hpp"
#include "ccbt/tri/triangles.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

TEST(WattsStrogatz, NoRewiringGivesTheRingLattice) {
  const CsrGraph g = watts_strogatz(40, 2, 0.0, 1);
  EXPECT_EQ(g.num_vertices(), 40u);
  EXPECT_EQ(g.num_edges(), 80u);  // n * k edges
  for (VertexId v = 0; v < 40; ++v) EXPECT_EQ(g.degree(v), 4u) << v;
}

TEST(WattsStrogatz, FullRewiringKeepsEdgeBudgetApproximately) {
  const CsrGraph g = watts_strogatz(200, 3, 1.0, 2);
  // Rewiring can only lose edges to dedupe/self-loop removal.
  EXPECT_LE(g.num_edges(), 600u);
  EXPECT_GT(g.num_edges(), 500u);
}

TEST(WattsStrogatz, LowBetaKeepsHighClustering) {
  // The small-world signature: slight rewiring preserves most triangles
  // of the ring lattice.
  const CsrGraph ring = watts_strogatz(300, 2, 0.0, 3);
  const CsrGraph sw = watts_strogatz(300, 2, 0.05, 3);
  const CsrGraph rand = watts_strogatz(300, 2, 1.0, 3);
  const Count t_ring = count_triangles_naive(ring).triangles;
  const Count t_sw = count_triangles_naive(sw).triangles;
  const Count t_rand = count_triangles_naive(rand).triangles;
  EXPECT_GT(t_sw, t_rand);
  EXPECT_GT(t_ring, 0u);
}

TEST(WattsStrogatz, RejectsBadArguments) {
  EXPECT_THROW(watts_strogatz(10, 0, 0.1, 4), Error);
  EXPECT_THROW(watts_strogatz(10, 2, 1.5, 4), Error);
  EXPECT_THROW(watts_strogatz(4, 2, 0.1, 4), Error);
}

TEST(StochasticBlock, BlockStructureDensities) {
  const CsrGraph g = stochastic_block({50, 50}, 0.3, 0.01, 5);
  EXPECT_EQ(g.num_vertices(), 100u);
  // Count within- vs cross-block edges.
  std::size_t within = 0, cross = 0;
  for (VertexId u = 0; u < 100; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (v < u) continue;
      ((u < 50) == (v < 50) ? within : cross) += 1;
    }
  }
  // Expected: within ~ 2 * C(50,2) * 0.3 = 735, cross ~ 2500 * 0.01 = 25.
  EXPECT_GT(within, 500u);
  EXPECT_LT(cross, 100u);
  EXPECT_GT(within, 5 * cross);
}

TEST(StochasticBlock, ExtremeProbabilities) {
  const CsrGraph cliques = stochastic_block({4, 4}, 1.0, 0.0, 6);
  EXPECT_EQ(cliques.num_edges(), 2u * 6u);  // two K4s
  const CsrGraph empty = stochastic_block({10, 10}, 0.0, 0.0, 7);
  EXPECT_EQ(empty.num_edges(), 0u);
}

TEST(StochasticBlock, RejectsBadProbabilities) {
  EXPECT_THROW(stochastic_block({5, 5}, -0.1, 0.0, 8), Error);
  EXPECT_THROW(stochastic_block({5, 5}, 0.5, 1.5, 8), Error);
}

TEST(StochasticBlock, SingleBlockIsGnp) {
  const CsrGraph g = stochastic_block({80}, 0.2, 0.9, 9);
  // p_out is irrelevant with one block.
  const double expected = 0.2 * (80.0 * 79.0 / 2.0);
  EXPECT_GT(static_cast<double>(g.num_edges()), 0.5 * expected);
  EXPECT_LT(static_cast<double>(g.num_edges()), 1.5 * expected);
}

TEST(Clustering, ExactValuesOnStructuredGraphs) {
  EXPECT_DOUBLE_EQ(global_clustering(complete_graph(3)), 1.0);
  EXPECT_DOUBLE_EQ(global_clustering(complete_graph(6)), 1.0);
  EXPECT_DOUBLE_EQ(global_clustering(star_graph(5)), 0.0);
  EXPECT_DOUBLE_EQ(global_clustering(cycle_graph(8)), 0.0);
  EXPECT_DOUBLE_EQ(global_clustering(path_graph(2)), 0.0);  // no wedges
}

TEST(Clustering, SmallWorldBeatsRandomModel) {
  // The Watts-Strogatz signature: far higher transitivity than a
  // degree-comparable Chung-Lu graph.
  const CsrGraph sw = watts_strogatz(1000, 3, 0.05, 10);
  const CsrGraph cl = chung_lu_power_law(1000, 1.8, 6.0, 10);
  EXPECT_GT(global_clustering(sw), 5.0 * global_clustering(cl));
}

TEST(Clustering, CommunityStructureRaisesClustering) {
  const CsrGraph sbm = stochastic_block({60, 60, 60}, 0.25, 0.005, 11);
  const CsrGraph er = erdos_renyi(180, sbm.num_edges(), 11);
  EXPECT_GT(global_clustering(sbm), 2.0 * global_clustering(er));
}

}  // namespace
}  // namespace ccbt
