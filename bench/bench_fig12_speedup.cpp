// Regenerates Figure 12: the average speedup of the DB algorithm at 512
// virtual ranks relative to 32 ranks, per query (averaged over graphs)
// and per graph (averaged over queries).
//
// Shape to verify: speedups land well below the ideal 16x but mostly in
// the upper half (the paper reports 7.4x-15.8x); low-skew inputs scale
// best, hub-dominated ones lose some parallelism to the residual max-rank
// load.

#include <map>

#include "common.hpp"

int main() {
  using namespace ccbt;
  using namespace ccbt::bench;
  print_header("Figure 12 — DB speedup, 512 vs 32 virtual ranks",
               "speedup = sim_time@32 / sim_time@512 (ideal = 16)");

  const auto graphs = load_grid(bench_scale());
  const auto queries = figure8_queries();
  std::map<std::string, std::vector<double>> by_query, by_graph;

  for (const auto& [gname, g] : graphs) {
    for (const QueryGraph& q : queries) {
      if (q.name() == "brain3") continue;  // double-run cost cap
      const Plan plan = make_plan(q);
      const CellResult r32 = run_cell(g, q, plan, Algo::kDB, 32, 7);
      const CellResult r512 = run_cell(g, q, plan, Algo::kDB, 512, 7);
      if (!r32.ok || !r512.ok || r512.sim == 0.0) continue;
      const double speedup = r32.sim / r512.sim;
      by_query[q.name()].push_back(speedup);
      by_graph[gname].push_back(speedup);
    }
  }

  TextTable tq({"query", "avg speedup (ideal 16)"});
  for (const QueryGraph& q : queries) {
    if (q.name() == "brain3") continue;
    tq.add_row({q.name(),
                TextTable::num(summarize(by_query[q.name()]).mean, 2)});
  }
  tq.print(std::cout);
  std::cout << "\n";
  TextTable tg({"graph", "avg speedup (ideal 16)"});
  for (const auto& [gname, g] : graphs) {
    tg.add_row({gname, TextTable::num(summarize(by_graph[gname]).mean, 2)});
  }
  tg.print(std::cout);
  return 0;
}
