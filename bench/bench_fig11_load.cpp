// Regenerates Figure 11: normalized execution time, maximum per-rank load
// and average per-rank load of PS vs DB on the enron stand-in at 512
// virtual ranks, per query (the paper omits brain3 here).
//
// Shape to verify: DB's average load is lower than PS's (it avoids
// wasteful extensions), and DB's *maximum* load drops even more — the
// load-balancing effect that drives its scalability; the time improvement
// correlates with the max-load improvement.

#include "common.hpp"

int main() {
  using namespace ccbt;
  using namespace ccbt::bench;
  print_header("Figure 11 — load on enron (512 virtual ranks)",
               "per query: normalized time / max load / avg load, PS vs DB");

  const CsrGraph g = make_workload("enron", bench_scale());
  TextTable t({"query", "time DB/PS", "maxload DB/PS", "avgload DB/PS",
               "imbalance PS", "imbalance DB"});

  for (const QueryGraph& q : figure8_queries()) {
    if (q.name() == "brain3") continue;  // as in the paper's figure
    const Plan plan = make_plan(q);
    const CellResult ps = run_cell(g, q, plan, Algo::kPS, 512, 7);
    const CellResult db = run_cell(g, q, plan, Algo::kDB, 512, 7);
    if (!ps.ok || !db.ok) {
      t.add_row({q.name(), "DNF", "DNF", "DNF", "-", "-"});
      continue;
    }
    auto ratio = [](double a, double b) { return b == 0.0 ? 0.0 : a / b; };
    t.add_row(
        {q.name(), TextTable::num(ratio(db.sim, ps.sim), 3),
         TextTable::num(ratio(static_cast<double>(db.max_rank_ops),
                              static_cast<double>(ps.max_rank_ops)),
                        3),
         TextTable::num(ratio(db.avg_rank_ops, ps.avg_rank_ops), 3),
         TextTable::num(ratio(static_cast<double>(ps.max_rank_ops),
                              ps.avg_rank_ops),
                        1),
         TextTable::num(ratio(static_cast<double>(db.max_rank_ops),
                              db.avg_rank_ops),
                        1)});
  }
  t.print(std::cout);
  std::cout << "(values < 1 mean DB is better; imbalance = max/avg load)\n";
  return 0;
}
