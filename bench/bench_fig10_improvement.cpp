// Regenerates Figure 10: the improvement factor IF = time(PS)/time(DB) on
// every (graph, query) combination, at 32 and at 512 virtual ranks.
// Cells where the PS baseline blows the memory budget print DNF — exactly
// the blank cells of the paper's heatmap.
//
// Shape to verify: DB wins on most combinations; IF grows with rank count
// (the paper: avg 2.4x @32 -> 5.0x @512, up to 28.7x); improvements are
// largest on high-skew graphs (enron, epinions) and complex queries
// (brain1-3), smallest on roadNetCA and the small graphlets.

#include <map>

#include "common.hpp"

int main() {
  using namespace ccbt;
  using namespace ccbt::bench;
  print_header("Figure 10 — improvement factor of DB over PS",
               "IF = sim_time(PS)/sim_time(DB); DNF = PS exceeded budget");

  const auto graphs = load_grid(bench_scale());
  const auto queries = figure8_queries();

  // The solver's work (and thus whether it blows the budget) does not
  // depend on the rank count — only the load accounting does — so a PS
  // cell that DNFs at 32 ranks is skipped at 512 instead of re-failing.
  std::map<std::pair<std::string, std::string>, bool> ps_dnf;

  for (std::uint32_t ranks : {32u, 512u}) {
    std::cout << "\n--- " << ranks << " virtual ranks ---\n";
    std::vector<std::string> header{"graph"};
    for (const QueryGraph& q : queries) header.push_back(q.name());
    TextTable t(header);

    std::vector<double> ifs;
    double max_if = 0.0;
    int db_wins = 0, cells = 0;
    for (const auto& [gname, g] : graphs) {
      std::vector<std::string> row{gname};
      for (const QueryGraph& q : queries) {
        const Plan plan = make_plan(q);
        const auto cell_id = std::make_pair(gname, q.name());
        if (ps_dnf.count(cell_id) && ps_dnf[cell_id]) {
          row.push_back("DNF");
          continue;
        }
        const CellResult ps = run_cell(g, q, plan, Algo::kPS, ranks, 7);
        ps_dnf[cell_id] = !ps.ok;
        const CellResult db = run_cell(g, q, plan, Algo::kDB, ranks, 7);
        if (!db.ok) {
          row.push_back("DNF(DB)");
          continue;
        }
        if (!ps.ok) {
          row.push_back("DNF");  // PS out of budget; DB completed
          continue;
        }
        if (ps.colorful != db.colorful) {
          row.push_back("MISMATCH");
          continue;
        }
        const double impf = ps.sim / std::max(db.sim, 1.0);
        ifs.push_back(impf);
        max_if = std::max(max_if, impf);
        db_wins += (impf > 1.0);
        ++cells;
        row.push_back(TextTable::num(impf, 2));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << "summary: DB wins " << db_wins << "/" << cells << " cells ("
              << TextTable::num(100.0 * db_wins / std::max(cells, 1), 0)
              << "%), avg IF=" << TextTable::num(summarize(ifs).mean, 2)
              << ", geo-mean IF=" << TextTable::num(geometric_mean(ifs), 2)
              << ", max IF=" << TextTable::num(max_if, 2) << "\n";
  }
  return 0;
}
