#pragma once
// Small-graph isomorphism utilities.
//
// Queries have at most 16 nodes, so exact isomorphism testing by pruned
// backtracking is cheap. These utilities back three things: deduplication
// when enumerating all small queries, cross-checking the automorphism
// counter (aut(Q) = #isomorphisms Q -> Q), and the exhaustive
// every-small-query property tests of the engine.

#include <cstdint>
#include <vector>

#include "ccbt/query/query_graph.hpp"

namespace ccbt {

/// Exact isomorphism test (degree-sequence prefilter + backtracking).
bool are_isomorphic(const QueryGraph& a, const QueryGraph& b);

/// Number of isomorphisms from a onto b (0 when not isomorphic;
/// aut(a) when a == b up to labels).
std::uint64_t count_isomorphisms(const QueryGraph& a, const QueryGraph& b);

/// A label-invariant fingerprint: equal codes for isomorphic graphs.
/// Exact canonical form for n <= 8 (minimum adjacency code over all
/// permutations, degree-class pruned); for larger n a collision-resistant
/// invariant hash (sorted refined color histogram) that never separates
/// isomorphic graphs but may rarely merge non-isomorphic ones — callers
/// needing certainty confirm with are_isomorphic.
std::uint64_t iso_invariant_code(const QueryGraph& q);

/// All connected simple graphs on `n` nodes (3 <= n <= 6) with treewidth
/// at most `max_treewidth` (1 or 2), one representative per isomorphism
/// class. The exhaustive workload for engine property tests.
std::vector<QueryGraph> all_connected_queries(int n, int max_treewidth = 2);

}  // namespace ccbt
