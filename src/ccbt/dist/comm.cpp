#include "ccbt/dist/comm.hpp"

namespace ccbt {

template class VirtualCommT<1>;
template class VirtualCommT<2>;
template class VirtualCommT<4>;
template class VirtualCommT<8>;

}  // namespace ccbt
