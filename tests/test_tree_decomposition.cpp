// Tests for explicit width-2 tree decompositions: the constructed object
// must satisfy the two defining properties of Section 2 on every
// supported query, and the validity checker must reject broken inputs.

#include <gtest/gtest.h>

#include "ccbt/query/catalog.hpp"
#include "ccbt/query/random_tw2.hpp"
#include "ccbt/query/tree_decomposition.hpp"
#include "ccbt/util/error.hpp"

namespace ccbt {
namespace {

TEST(TreeDecomposition, TriangleSingleBag) {
  const TreeDecomposition td = tree_decomposition_w2(q_cycle(3));
  EXPECT_TRUE(valid_tree_decomposition(td, q_cycle(3)));
  EXPECT_EQ(td.width(), 2);
}

TEST(TreeDecomposition, PathHasWidthOne) {
  const QueryGraph q = q_path(6);
  const TreeDecomposition td = tree_decomposition_w2(q);
  EXPECT_TRUE(valid_tree_decomposition(td, q));
  EXPECT_EQ(td.width(), 1);
}

TEST(TreeDecomposition, StarHasWidthOne) {
  const QueryGraph q = q_star(7);
  const TreeDecomposition td = tree_decomposition_w2(q);
  EXPECT_TRUE(valid_tree_decomposition(td, q));
  EXPECT_EQ(td.width(), 1);
}

TEST(TreeDecomposition, CyclesHaveWidthTwo) {
  for (int len : {4, 5, 8, 12}) {
    const QueryGraph q = q_cycle(len);
    const TreeDecomposition td = tree_decomposition_w2(q);
    EXPECT_TRUE(valid_tree_decomposition(td, q)) << len;
    EXPECT_EQ(td.width(), 2) << len;
  }
}

TEST(TreeDecomposition, AllCatalogQueriesValid) {
  for (const std::string& name : catalog_names()) {
    const QueryGraph q = named_query(name);
    const TreeDecomposition td = tree_decomposition_w2(q);
    EXPECT_TRUE(valid_tree_decomposition(td, q)) << name;
    EXPECT_LE(td.width(), 2) << name;
  }
}

TEST(TreeDecomposition, RejectsK4) {
  QueryGraph k4(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_THROW(tree_decomposition_w2(k4), UnsupportedQuery);
}

TEST(TreeDecomposition, RejectsDisconnected) {
  QueryGraph dis(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(tree_decomposition_w2(dis), UnsupportedQuery);
}

TEST(TreeDecompositionChecker, CatchesMissingEdgeCoverage) {
  TreeDecomposition td;
  td.bags = {0b011, 0b110};  // bags {0,1}, {1,2}
  td.edges = {{0, 1}};
  // Query with edge (0,2) not inside any bag.
  QueryGraph q(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_FALSE(valid_tree_decomposition(td, q));
}

TEST(TreeDecompositionChecker, CatchesDisconnectedOccupancy) {
  TreeDecomposition td;
  td.bags = {0b011, 0b110, 0b101};  // node 0 in pieces 0 and 2, not 1
  td.edges = {{0, 1}, {1, 2}};
  QueryGraph q(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_FALSE(valid_tree_decomposition(td, q));
}

TEST(TreeDecompositionChecker, CatchesNonTree) {
  TreeDecomposition td;
  td.bags = {0b111, 0b111};
  td.edges = {};  // two pieces, no edge: forest, not a tree
  QueryGraph q(3, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_FALSE(valid_tree_decomposition(td, q));
}

class TreeDecompositionSweep : public ::testing::TestWithParam<int> {};

TEST_P(TreeDecompositionSweep, RandomQueriesDecompose) {
  RandomTw2Options opts;
  opts.target_nodes = 4 + (GetParam() % 12);
  const QueryGraph q = random_tw2_query(opts, 5000 + GetParam());
  const TreeDecomposition td = tree_decomposition_w2(q);
  EXPECT_TRUE(valid_tree_decomposition(td, q));
  EXPECT_LE(td.width(), 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeDecompositionSweep,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace ccbt
